"""XCAL-style logging: DRM files, KPI records, and dataset export.

The paper's probes (Accuver XCAL Solo) wrote ``.drm`` log files whose
*filenames* carry local-time timestamps while their *contents* carry EDT
timestamps, and the app-layer tools logged UTC or local time depending on
the app (§B).  Reconciling these — across four timezones — required a
dedicated synchronisation software; :mod:`repro.sync` reproduces it, and this
package reproduces the log producers.
"""

from repro.xcal.records import XcalKpiRecord, SignalingRecord
from repro.xcal.drm import DrmFile
from repro.xcal.applog import AppLogFile
from repro.xcal.export import export_logs, TRIP_START_UTC
from repro.xcal.probe import XcalProbe
from repro.xcal.handover_logger import HandoverLoggerTrace, run_handover_logger

__all__ = [
    "XcalKpiRecord",
    "SignalingRecord",
    "DrmFile",
    "AppLogFile",
    "export_logs",
    "TRIP_START_UTC",
    "XcalProbe",
    "HandoverLoggerTrace",
    "run_handover_logger",
]
