"""Streaming XCAL probe: collects one test's capture as it happens.

:mod:`repro.xcal.export` renders DRM files from a finished dataset in batch;
this probe is the *streaming* equivalent of an XCAL Solo attached over
USB-C — it observes each tick of the test as it occurs and accumulates the
capture, with the same timestamp conventions (local-time filename, EDT
contents).
"""

from __future__ import annotations

from datetime import datetime, timedelta

from repro.campaign.link import LinkTick
from repro.geo.timezones import XCAL_INTERNAL_TZ, Timezone
from repro.radio.operators import Operator
from repro.xcal.drm import DrmFile
from repro.xcal.records import SignalingRecord, XcalKpiRecord

__all__ = ["XcalProbe"]


class XcalProbe:
    """Accumulates one test's ticks into a DRM capture.

    Parameters
    ----------
    operator:
        The phone's carrier (written into the DRM filename).
    test_label:
        The test-type tag for the filename.
    trip_start_utc:
        Wall-clock anchor for campaign time 0.
    local_tz:
        Timezone of the capture location (DRM filenames use local time).

    Examples
    --------
    Attach, feed ticks, detach::

        probe = XcalProbe(op, "dl_tput", trip_start, Timezone.MOUNTAIN)
        for tick in ticks:
            probe.observe(tick, tput_mbps=measured)
        drm = probe.finish()
    """

    def __init__(
        self,
        operator: Operator,
        test_label: str,
        trip_start_utc: datetime,
        local_tz: Timezone,
    ) -> None:
        self._operator = operator
        self._test_label = test_label
        self._trip_start_utc = trip_start_utc
        self._local_tz = local_tz
        self._kpis: list[XcalKpiRecord] = []
        self._signaling: list[SignalingRecord] = []
        self._first_time_s: float | None = None

    def _edt(self, time_s: float) -> datetime:
        return self._trip_start_utc + timedelta(seconds=time_s) + XCAL_INTERNAL_TZ.utc_offset

    def observe(self, tick: LinkTick, tput_mbps: float = 0.0) -> None:
        """Record one 500 ms tick (KPIs + any handover signalling)."""
        if self._first_time_s is None:
            self._first_time_s = tick.time_s
        self._kpis.append(
            XcalKpiRecord(
                timestamp_edt=self._edt(tick.time_s),
                technology=tick.tech,
                rsrp_dbm=tick.rsrp_dbm,
                mcs=tick.mcs,
                bler=tick.bler,
                n_ccs=tick.n_ccs,
                tput_mbps=tput_mbps,
            )
        )
        for ev in tick.handovers:
            start = self._edt(ev.time_s)
            end = start + timedelta(milliseconds=ev.duration_ms)
            self._signaling.append(
                SignalingRecord(start, "HO_START", str(ev.from_cell), str(ev.to_cell))
            )
            self._signaling.append(
                SignalingRecord(end, "HO_END", str(ev.from_cell), str(ev.to_cell))
            )

    @property
    def tick_count(self) -> int:
        return len(self._kpis)

    def finish(self) -> DrmFile:
        """Close the capture and return the DRM file.

        Raises
        ------
        ValueError
            If no ticks were observed (XCAL writes no empty captures).
        """
        if self._first_time_s is None:
            raise ValueError("probe observed no ticks")
        start_local = (
            self._trip_start_utc
            + timedelta(seconds=self._first_time_s)
            + self._local_tz.utc_offset
        )
        drm = DrmFile(
            operator=self._operator,
            test_label=self._test_label,
            start_local=start_local.replace(microsecond=0),
        )
        drm.kpi_records = list(self._kpis)
        drm.signaling_records = list(self._signaling)
        return drm
