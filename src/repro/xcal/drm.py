"""DRM log files — XCAL's on-disk container, timestamp quirks included.

The paper (§B): *"XCAL saved the log files (.drm files) with local
timestamps in the filenames, whereas their contents had timestamps in EDT.
This made it difficult to match a corresponding app layer log file with its
XCAL counterpart."*  We reproduce exactly that: :meth:`DrmFile.filename`
uses the capture location's local time, while every contained record is EDT.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime

from repro.errors import LogFormatError
from repro.radio.operators import Operator
from repro.xcal.records import SignalingRecord, XcalKpiRecord

__all__ = ["DrmFile"]

_OP_BY_CODE = {op.code: op for op in Operator}


@dataclass
class DrmFile:
    """One XCAL capture: a test's KPI rows plus signalling events.

    Parameters
    ----------
    start_local:
        Test start in the *local* timezone of where the vehicle was — this
        is what the filename carries.
    test_label:
        The test type tag embedded in the filename (e.g. ``dl_tput``).
    """

    operator: Operator
    test_label: str
    start_local: datetime
    kpi_records: list[XcalKpiRecord] = field(default_factory=list)
    signaling_records: list[SignalingRecord] = field(default_factory=list)

    @property
    def filename(self) -> str:
        """Local-timestamp filename, as XCAL writes it."""
        stamp = self.start_local.strftime("%Y%m%d_%H%M%S")
        return f"{stamp}_{self.test_label}_{self.operator.code}.drm"

    def serialize(self) -> str:
        """Render the file body (header + interleaved records)."""
        lines = [f"# XCAL DRM capture operator={self.operator.code} test={self.test_label}"]
        records: list[tuple[datetime, str]] = [
            (r.timestamp_edt, r.to_line()) for r in self.kpi_records
        ]
        records += [(r.timestamp_edt, r.to_line()) for r in self.signaling_records]
        records.sort(key=lambda pair: pair[0])
        lines.extend(line for _, line in records)
        return "\n".join(lines) + "\n"

    @classmethod
    def parse(cls, filename: str, body: str) -> "DrmFile":
        """Parse a DRM file back from its filename and body.

        Raises
        ------
        LogFormatError
            On a malformed filename, header, or record line.
        """
        stem = filename[:-4] if filename.endswith(".drm") else filename
        parts = stem.split("_")
        if len(parts) < 4:
            raise LogFormatError(f"malformed DRM filename: {filename!r}")
        op_code = parts[-1]
        if op_code not in _OP_BY_CODE:
            raise LogFormatError(f"unknown operator code in filename: {filename!r}")
        test_label = "_".join(parts[2:-1])
        try:
            start_local = datetime.strptime("_".join(parts[:2]), "%Y%m%d_%H%M%S")
        except ValueError as exc:
            raise LogFormatError(f"bad timestamp in filename: {filename!r}") from exc

        drm = cls(
            operator=_OP_BY_CODE[op_code],
            test_label=test_label,
            start_local=start_local,
        )
        for line in body.splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            kind = line.split("|")[1] if "|" in line else ""
            if kind == "KPI":
                drm.kpi_records.append(XcalKpiRecord.from_line(line))
            elif kind == "SIG":
                drm.signaling_records.append(SignalingRecord.from_line(line))
            else:
                raise LogFormatError(f"unknown DRM record: {line!r}")
        return drm
