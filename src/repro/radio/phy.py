"""PHY-layer model: MCS selection, BLER, and link capacity.

Given the channel state (SINR), this module produces the KPIs XCAL logs —
primary-cell MCS and BLER — and the instantaneous link-layer capacity offered
to transport, combining spectral efficiency, channel bandwidth, duplexing
share, carrier aggregation, and the zone's load share.

Capacity calibration anchors (paper values):

* static urban 5G downlink medians ≈ 1511 / 311 / 710 Mbps (V/T/A, Fig. 3a),
  maxima up to 3415 Mbps (Verizon mmWave, multi-CC);
* T-Mobile midband driving downlink up to ~760 Mbps (Fig. 4);
* uplink roughly an order of magnitude below downlink (Fig. 3);
* driving medians collapse to a few tens of Mbps because of zone load and
  MCS degradation, not because peak capacity disappears (§5.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import math

import numpy as np

from repro.rng import clamp

from repro.radio.ca import aggregate_capacity_factor
from repro.radio.channel import ChannelState
from repro.radio.operators import Operator
from repro.radio.technology import RadioTechnology

__all__ = ["PhyReport", "PhyModel", "MAX_MCS_INDEX"]

MAX_MCS_INDEX = 28

#: Peak spectral efficiency per technology in bit/s/Hz (MIMO layers folded
#: in), reached at the highest MCS.
_PEAK_EFFICIENCY: dict[RadioTechnology, float] = {
    RadioTechnology.LTE: 4.4,
    RadioTechnology.LTE_A: 5.5,
    RadioTechnology.NR_LOW: 5.0,
    RadioTechnology.NR_MID: 5.5,
    RadioTechnology.NR_MMWAVE: 5.0,
}

#: Downlink share of the frame: FDD technologies get the full channel per
#: direction, TDD mid/mmWave split DL-heavy.
_DL_DUPLEX_SHARE: dict[RadioTechnology, float] = {
    RadioTechnology.LTE: 1.0,
    RadioTechnology.LTE_A: 1.0,
    RadioTechnology.NR_LOW: 1.0,
    RadioTechnology.NR_MID: 0.75,
    RadioTechnology.NR_MMWAVE: 0.8,
}

#: Uplink capacity as a fraction of the downlink capacity formula: folds in
#: the UL duplex share, the UE's limited transmit power and antenna count.
#: Calibrated to the order-of-magnitude DL/UL asymmetry of Figs. 3-4.
_UL_CAPACITY_RATIO: dict[RadioTechnology, float] = {
    RadioTechnology.LTE: 0.42,
    RadioTechnology.LTE_A: 0.40,
    RadioTechnology.NR_LOW: 0.42,
    RadioTechnology.NR_MID: 0.17,
    RadioTechnology.NR_MMWAVE: 0.16,
}

#: Secondary carriers contribute far less in the uplink: the second UL CC is
#: usually a narrow LTE anchor (§5.5 "CA").
_UL_SECONDARY_CC_FACTOR = 0.3

#: SINR (dB) below which MCS bottoms out and above which it saturates.
_SINR_FLOOR_DB = -6.0
_SINR_CEILING_DB = 30.0

#: Spectrum-holding scale per (operator, technology): T-Mobile's n71+n41
#: low-band depth and 100 MHz midband vs the others' narrower mid-band
#: licences (C-band/n77 partial deployments in 2022).
_OPERATOR_BANDWIDTH_SCALE: dict[tuple[Operator, RadioTechnology], float] = {
    (Operator.TMOBILE, RadioTechnology.NR_LOW): 1.2,
    (Operator.TMOBILE, RadioTechnology.NR_MID): 1.2,
    (Operator.VERIZON, RadioTechnology.NR_MID): 0.65,
    (Operator.ATT, RadioTechnology.LTE_A): 1.4,
    (Operator.ATT, RadioTechnology.NR_MID): 0.60,
    (Operator.ATT, RadioTechnology.NR_MMWAVE): 0.62,
}


@dataclass(frozen=True, slots=True)
class PhyReport:
    """One PHY-layer observation: the KPIs XCAL would log plus capacity."""

    mcs: int
    bler: float
    n_ccs: int
    #: Link capacity offered to the transport layer, in Mbps, after load.
    capacity_mbps: float


class PhyModel:
    """Maps channel state to MCS/BLER/capacity.

    Stateless apart from its RNG; callers hold per-zone CA configuration and
    load and pass them in.
    """

    def __init__(self, rng: np.random.Generator, operator: Operator | None = None) -> None:
        self._rng = rng
        self._operator = operator

    def mcs_from_sinr(self, sinr_db: float) -> int:
        """Select the primary cell's MCS index for a given SINR.

        A linear map from the SINR working range onto [0, 28] with ±1.5
        index reporting noise — the shape of real link adaptation without
        modelling the full CQI feedback loop.
        """
        span = _SINR_CEILING_DB - _SINR_FLOOR_DB
        frac = (sinr_db - _SINR_FLOOR_DB) / span
        raw = frac * MAX_MCS_INDEX + self._rng.normal(0.0, 1.5)
        return int(clamp(round(raw), 0, MAX_MCS_INDEX))

    def bler_from_sinr(self, sinr_db: float, speed_mph: float) -> float:
        """Residual block error rate.

        Near 3–10% in good conditions (HARQ operating point), rising when
        SINR collapses; vehicle speed adds a small Doppler/fast-fading
        penalty.
        """
        base = 0.03 + 0.25 / (1.0 + math.exp(clamp((sinr_db - 4.0) / 2.5, -60.0, 60.0)))
        speed_penalty = 0.0008 * max(speed_mph, 0.0) * self._rng.uniform(0.5, 1.5)
        noise = self._rng.normal(0.0, 0.01)
        return clamp(base + speed_penalty + noise, 0.002, 0.85)

    def capacity_mbps(
        self,
        tech: RadioTechnology,
        mcs: int,
        bler: float,
        n_ccs: int,
        load: float,
        direction: str,
    ) -> float:
        """Instantaneous capacity offered to transport, in Mbps.

        capacity = peak_eff · (MCS/28)^1.2 · BW · duplex · CA · (1−BLER) · load

        The mild super-linearity in MCS reflects that low indices also use
        QPSK with heavy coding.
        """
        if not 0 <= mcs <= MAX_MCS_INDEX:
            raise ValueError(f"MCS out of range: {mcs}")
        if not 0.0 < load <= 1.0:
            raise ValueError(f"load must be in (0, 1], got {load}")
        eff = _PEAK_EFFICIENCY[tech] * (mcs / MAX_MCS_INDEX) ** 1.2
        if direction == "uplink":
            per_cc = eff * tech.channel_mhz * _UL_CAPACITY_RATIO[tech]
            ca_factor = 1.0 + _UL_SECONDARY_CC_FACTOR * (n_ccs - 1)
        else:
            per_cc = eff * tech.channel_mhz * _DL_DUPLEX_SHARE[tech]
            ca_factor = aggregate_capacity_factor(n_ccs)
        total = per_cc * ca_factor
        if self._operator is not None:
            total *= _OPERATOR_BANDWIDTH_SCALE.get((self._operator, tech), 1.0)
        return float(max(total * (1.0 - bler) * load, 0.01))

    #: Effective SINR penalty per mph: Doppler spread and outdated CSI make
    #: link adaptation conservative at speed (Table 2's weak negative
    #: speed-throughput correlation).
    SPEED_SINR_PENALTY_DB_PER_MPH = 0.05

    def report(
        self,
        tech: RadioTechnology,
        channel: ChannelState,
        n_ccs: int,
        load: float,
        speed_mph: float,
        direction: str,
    ) -> PhyReport:
        """Produce the full PHY observation for one 500 ms tick."""
        effective_sinr = channel.sinr_db - self.SPEED_SINR_PENALTY_DB_PER_MPH * max(
            speed_mph, 0.0
        )
        mcs = self.mcs_from_sinr(effective_sinr)
        bler = self.bler_from_sinr(channel.sinr_db, speed_mph)
        capacity = self.capacity_mbps(tech, mcs, bler, n_ccs, load, direction)
        return PhyReport(mcs=mcs, bler=bler, n_ccs=n_ccs, capacity_mbps=capacity)
