"""The three major US mobile network operators measured by the paper."""

from __future__ import annotations

import enum


class Operator(enum.Enum):
    """A US carrier, with the paper's single-letter short code."""

    VERIZON = ("Verizon", "V")
    TMOBILE = ("T-Mobile", "T")
    ATT = ("AT&T", "A")

    def __init__(self, label: str, code: str) -> None:
        self.label = label
        self.code = code

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.label


ALL_OPERATORS: tuple[Operator, ...] = (
    Operator.VERIZON,
    Operator.TMOBILE,
    Operator.ATT,
)
