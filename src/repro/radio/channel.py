"""Radio channel model: RSRP / SINR of the serving link.

We model RSRP with a per-technology log-distance path-loss law anchored at a
reference received power, plus spatially correlated (Gudmundson-style)
shadowing evolved as the vehicle moves.  The reference powers encode the one
operator-specific PHY detail the paper calls out explicitly (§5.5 "RSRP"):
Verizon's mmWave deployment uses a small number of *wide* beams with lower
gain (RSRP −80 to −110 dBm) while AT&T uses narrower, higher-gain beams
(−70 to −90 dBm) — which is why Verizon's downlink throughput shows almost no
correlation with RSRP (Table 2).

SINR follows from RSRP against a per-technology noise+interference floor with
region- and load-dependent interference.
"""

from __future__ import annotations

from dataclasses import dataclass

import math

import numpy as np

from repro.rng import clamp

from repro.geo.regions import RegionType
from repro.radio.cells import Cell
from repro.radio.operators import Operator
from repro.radio.technology import RadioTechnology

__all__ = ["PathLossParams", "ChannelState", "ChannelModel"]


@dataclass(frozen=True, slots=True)
class PathLossParams:
    """Log-distance model: RSRP(d) = ref_dbm − 10·n·log10(d / 100 m)."""

    ref_dbm_at_100m: float
    exponent: float
    shadow_sigma_db: float


#: Per-technology propagation parameters (reference RSRP at 100 m).
_PATH_LOSS: dict[RadioTechnology, PathLossParams] = {
    RadioTechnology.LTE: PathLossParams(-78.0, 2.9, 6.0),
    RadioTechnology.LTE_A: PathLossParams(-76.0, 2.9, 6.0),
    RadioTechnology.NR_LOW: PathLossParams(-74.0, 2.7, 6.0),
    RadioTechnology.NR_MID: PathLossParams(-80.0, 3.0, 7.0),
    RadioTechnology.NR_MMWAVE: PathLossParams(-82.0, 2.5, 8.0),
}

#: Operator adjustment to the mmWave reference power (beam-width effect).
_MMWAVE_BEAM_ADJUST_DB: dict[Operator, float] = {
    Operator.VERIZON: -6.0,   # wide beams, low gain → low RSRP (§5.5)
    Operator.TMOBILE: 0.0,
    Operator.ATT: +10.0,      # narrow beams, high gain → high RSRP
}

#: Operator adjustment to the 4G (LTE/LTE-A) reference power.  AT&T's LTE-A
#: backbone is its strength (§5.4: AT&T outperforms T-Mobile in ~80% of
#: LT-LT downlink locations thanks to superior LTE-A and 5G-low service).
_FOURG_GRID_ADJUST_DB: dict[Operator, float] = {
    Operator.VERIZON: 0.0,
    Operator.TMOBILE: 0.0,
    Operator.ATT: +7.0,
}

#: Noise + thermal floor per technology (wider channels → higher floor).
_NOISE_FLOOR_DBM: dict[RadioTechnology, float] = {
    RadioTechnology.LTE: -115.0,
    RadioTechnology.LTE_A: -115.0,
    RadioTechnology.NR_LOW: -116.0,
    RadioTechnology.NR_MID: -112.0,
    RadioTechnology.NR_MMWAVE: -112.0,
}

#: Inter-cell interference margin (dB) by region — densest in cities.
_INTERFERENCE_DB: dict[RegionType, float] = {
    RegionType.CITY: 4.0,
    RegionType.SUBURBAN: 2.0,
    RegionType.HIGHWAY: 1.0,
}

#: Shadowing decorrelation distance in meters (Gudmundson model).
_SHADOW_DECORRELATION_M = 80.0


@dataclass(frozen=True, slots=True)
class ChannelState:
    """Instantaneous channel view of the serving link."""

    rsrp_dbm: float
    sinr_db: float


class ChannelModel:
    """Stateful channel evaluator for one operator's UE.

    Keeps one spatially correlated shadowing process per serving cell, so
    RSRP evolves smoothly while camped on a cell and decorrelates across
    handovers.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.geo.coords import LatLon
    >>> from repro.radio.cells import Cell, CellId
    >>> model = ChannelModel(Operator.VERIZON, np.random.default_rng(0))
    >>> cell = Cell(CellId(Operator.VERIZON, RadioTechnology.LTE, 1),
    ...             LatLon(0, 0), site_mark_m=500.0, perpendicular_m=100.0)
    >>> st = model.state(cell, mark_m=400.0, region=RegionType.HIGHWAY, load=0.5)
    >>> -130 < st.rsrp_dbm < -40
    True
    """

    def __init__(self, operator: Operator, rng: np.random.Generator) -> None:
        self._operator = operator
        self._rng = rng
        # Shadowing memory: cell id -> (last mark_m, last shadow value dB).
        self._shadow: dict[object, tuple[float, float]] = {}

    def params_for(self, tech: RadioTechnology) -> PathLossParams:
        """Propagation parameters for ``tech`` including the operator's
        mmWave beam adjustment."""
        base = _PATH_LOSS[tech]
        if tech is RadioTechnology.NR_MMWAVE:
            adj = _MMWAVE_BEAM_ADJUST_DB[self._operator]
            return PathLossParams(base.ref_dbm_at_100m + adj, base.exponent, base.shadow_sigma_db)
        if tech.is_4g:
            adj = _FOURG_GRID_ADJUST_DB[self._operator]
            if adj:
                return PathLossParams(base.ref_dbm_at_100m + adj, base.exponent, base.shadow_sigma_db)
        return base

    def state(
        self,
        cell: Cell,
        mark_m: float,
        region: RegionType,
        load: float,
    ) -> ChannelState:
        """Channel state at route position ``mark_m`` served by ``cell``.

        Parameters
        ----------
        load:
            The zone's load share in (0, 1]; *other* users' activity raises
            interference, so a low available share means a high-interference
            environment.
        """
        params = self.params_for(cell.technology)
        distance = max(cell.distance_to_mark_m(mark_m), 10.0)
        mean_rsrp = params.ref_dbm_at_100m - 10.0 * params.exponent * math.log10(distance / 100.0)
        shadow = self._evolve_shadow(cell, mark_m, params.shadow_sigma_db)
        rsrp = clamp(mean_rsrp + shadow, -135.0, -45.0)

        interference = _INTERFERENCE_DB[region] + 5.0 * (1.0 - load)
        floor = _NOISE_FLOOR_DBM[cell.technology] + interference
        sinr = clamp(rsrp - floor, -10.0, 40.0)
        return ChannelState(rsrp_dbm=rsrp, sinr_db=sinr)

    def _evolve_shadow(self, cell: Cell, mark_m: float, sigma_db: float) -> float:
        """Advance the cell's shadowing process to ``mark_m``."""
        key = cell.cell_id
        prev = self._shadow.get(key)
        if prev is None:
            # A3-style selection bias: a cell starts serving because its
            # signal crossed above the old cell's by a hysteresis margin.
            value = float(self._rng.normal(3.0, sigma_db))
        else:
            prev_mark, prev_value = prev
            moved = abs(mark_m - prev_mark)
            rho = math.exp(-moved / _SHADOW_DECORRELATION_M)
            value = rho * prev_value + float(
                math.sqrt(max(0.0, 1.0 - rho * rho)) * self._rng.normal(0.0, sigma_db)
            )
        self._shadow[key] = (mark_m, value)
        # Bound the dictionary: drop entries for cells left far behind.
        if len(self._shadow) > 64:
            self._shadow = dict(
                sorted(self._shadow.items(), key=lambda kv: kv[1][0])[-32:]
            )
        return value
