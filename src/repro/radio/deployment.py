"""Per-operator radio deployment along the route.

This module is the generative heart of the reproduction's substrate.  The
paper's UEs experienced, per operator, a *piecewise* radio environment: each
stretch of road is dominated by one serving cell per technology layer, and the
set of technologies deployed there reflects the operator's strategy —
Verizon's mmWave downtown, T-Mobile's broad midband, AT&T's LTE-A backbone
(§4.2).  We model this as a partition of the route into
:class:`DeploymentZone` s.  For each zone we draw:

* the *best deployed technology* from a calibrated mix conditioned on
  (operator, region type, timezone) — calibration targets are the coverage
  percentages of Fig. 2;
* the full deployed technology set (LTE always; lower tiers fill in below the
  best tech);
* per-direction cell load factors (the share of cell capacity our single UE
  can obtain), including occasional deeply congested/backhaul-limited zones —
  the paper's "performance is often poor even in areas with full high-speed
  5G coverage" (§5.2);
* cell sites (one per deployed technology) with positions used by the channel
  model.

Two independent partitions exist per operator:

* the **active** partition, dense small cells crossed during throughput and
  app tests (drives handover rates of Fig. 11);
* the **macro** partition, the sparse LTE anchor grid that the passive
  handover-logger phones camped on for the whole trip (drives Table 1's
  trip-wide handover counts).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

import numpy as np

from repro.rng import choose_weighted, clamp

from repro.errors import DeploymentError
from repro.geo.regions import RegionType
from repro.geo.route import Route
from repro.geo.timezones import Timezone
from repro.radio.cells import Cell, CellId
from repro.radio.operators import Operator
from repro.radio.technology import RadioTechnology

__all__ = [
    "TechMix",
    "DEFAULT_TECH_MIX",
    "TIMEZONE_5G_MULTIPLIER",
    "ZoneLengthParams",
    "DeploymentZone",
    "DeploymentModel",
]

TechMix = dict[RadioTechnology, float]

_LTE = RadioTechnology.LTE
_LTE_A = RadioTechnology.LTE_A
_NR_LOW = RadioTechnology.NR_LOW
_NR_MID = RadioTechnology.NR_MID
_NR_MM = RadioTechnology.NR_MMWAVE


def _mix(mmw: float, mid: float, low: float, ltea: float, lte: float) -> TechMix:
    """Build a technology mix, validating it sums to 1."""
    mix = {_NR_MM: mmw, _NR_MID: mid, _NR_LOW: low, _LTE_A: ltea, _LTE: lte}
    total = sum(mix.values())
    if abs(total - 1.0) > 1e-9:
        raise DeploymentError(f"technology mix sums to {total}, expected 1.0")
    if any(p < 0.0 for p in mix.values()):
        raise DeploymentError("technology mix has negative probabilities")
    return mix


#: Best-deployed-technology mix by operator and region.  Calibrated against
#: Fig. 2a/2c/2d: T-Mobile ~68% 5G (~38% high-speed); Verizon/AT&T ~18-22% 5G
#: with Verizon mmWave concentrated in cities (43% high-speed 5G at low
#: speeds) and AT&T's high-speed 5G a mere ~3% overall.
DEFAULT_TECH_MIX: dict[Operator, dict[RegionType, TechMix]] = {
    Operator.VERIZON: {
        RegionType.CITY: _mix(0.30, 0.13, 0.17, 0.30, 0.10),
        RegionType.SUBURBAN: _mix(0.00, 0.06, 0.10, 0.55, 0.29),
        RegionType.HIGHWAY: _mix(0.005, 0.10, 0.07, 0.52, 0.305),
    },
    Operator.TMOBILE: {
        RegionType.CITY: _mix(0.01, 0.60, 0.22, 0.12, 0.05),
        RegionType.SUBURBAN: _mix(0.00, 0.42, 0.28, 0.18, 0.12),
        RegionType.HIGHWAY: _mix(0.002, 0.36, 0.30, 0.20, 0.138),
    },
    Operator.ATT: {
        RegionType.CITY: _mix(0.08, 0.06, 0.31, 0.40, 0.15),
        RegionType.SUBURBAN: _mix(0.00, 0.02, 0.14, 0.55, 0.29),
        RegionType.HIGHWAY: _mix(0.001, 0.02, 0.16, 0.60, 0.219),
    },
}

#: Multiplier applied to all 5G probabilities per timezone (then
#: renormalised against the 4G mass).  Encodes Fig. 2c's regional diversity:
#: Verizon's stronger eastern 5G, T-Mobile's Pacific midband emphasis,
#: AT&T's weak Mountain/Central deployment.
TIMEZONE_5G_MULTIPLIER: dict[Operator, dict[Timezone, float]] = {
    Operator.VERIZON: {
        Timezone.PACIFIC: 1.00,
        Timezone.MOUNTAIN: 0.60,
        Timezone.CENTRAL: 1.25,
        Timezone.EASTERN: 1.30,
    },
    Operator.TMOBILE: {
        Timezone.PACIFIC: 1.25,
        Timezone.MOUNTAIN: 0.85,
        Timezone.CENTRAL: 1.00,
        Timezone.EASTERN: 1.05,
    },
    Operator.ATT: {
        Timezone.PACIFIC: 1.50,
        Timezone.MOUNTAIN: 0.45,
        Timezone.CENTRAL: 0.50,
        Timezone.EASTERN: 1.50,
    },
}


def adjusted_mix(operator: Operator, region: RegionType, tz: Timezone) -> TechMix:
    """Return the best-tech mix for a zone, with the timezone 5G multiplier
    applied and the distribution renormalised.

    The 5G mass is scaled by the operator's timezone multiplier (capped so it
    never exceeds 95%), and the 4G technologies absorb the complement in
    their original proportion.
    """
    base = DEFAULT_TECH_MIX[operator][region]
    mult = TIMEZONE_5G_MULTIPLIER[operator][tz]
    nr_mass = sum(p for t, p in base.items() if t.is_5g)
    fourg_mass = 1.0 - nr_mass
    new_nr_mass = min(nr_mass * mult, 0.95)
    if fourg_mass <= 0.0:
        return dict(base)
    nr_scale = new_nr_mass / nr_mass if nr_mass > 0 else 0.0
    fourg_scale = (1.0 - new_nr_mass) / fourg_mass
    return {
        t: p * (nr_scale if t.is_5g else fourg_scale) for t, p in base.items()
    }


@dataclass(frozen=True, slots=True)
class ZoneLengthParams:
    """Lognormal zone-length parameters (meters)."""

    median_m: float
    sigma: float = 0.45

    def sample(self, rng: np.random.Generator) -> float:
        """Draw a zone length; clipped to a sane [80 m, 20 km] envelope."""
        length = rng.lognormal(mean=np.log(self.median_m), sigma=self.sigma)
        return clamp(float(length), 80.0, 20_000.0)


#: Active-layer zone length medians by region.  Highway medians are
#: per-operator (below); these are the city/suburban values.
_ACTIVE_ZONE_MEDIAN_M: dict[RegionType, float] = {
    RegionType.CITY: 450.0,
    RegionType.SUBURBAN: 1400.0,
}

#: Per-operator highway zone medians, calibrated to Fig. 11a's median
#: 1-3 handovers/mile during 30 s throughput tests.
_ACTIVE_HIGHWAY_MEDIAN_M: dict[Operator, float] = {
    Operator.VERIZON: 700.0,
    Operator.TMOBILE: 750.0,
    Operator.ATT: 1000.0,
}

#: Macro (LTE anchor) zone medians — the sparse grid the passive
#: handover-loggers camped on, calibrated to Table 1's trip-wide HO counts
#: (2657 / 4119 / 2494 for V / T / A over 5711 km).
_MACRO_ZONE_MEDIAN_M: dict[Operator, float] = {
    Operator.VERIZON: 2050.0,
    Operator.TMOBILE: 1320.0,
    Operator.ATT: 2180.0,
}

#: Zone-level congestion model: the share of cell capacity a single UE can
#: obtain.  ``deep_congestion_prob`` zones are effectively unusable
#: (backhaul-limited or overloaded), producing the paper's ~35% of samples
#: below 5 Mbps (§5.1) even under nominal 5G coverage.
_LOAD_BETA_A = 1.5
_LOAD_BETA_B = 3.0
_DEEP_CONGESTION_PROB = {
    Operator.VERIZON: 0.22,
    Operator.TMOBILE: 0.20,
    Operator.ATT: 0.24,
}
_DEEP_CONGESTION_RANGE = (0.01, 0.10)
#: The Mountain-timezone stretch is served by sparse rural sites with long
#: backhaul: extra deep-congestion probability and a capacity haircut
#: (Fig. 5: 'the performance in the Mountain timezone is low for all three
#: carriers').
_MOUNTAIN_EXTRA_CONGESTION = 0.10
_MOUNTAIN_LOAD_SCALE = 0.75
#: Uplink contention is lighter: far fewer users saturate the uplink.
_UL_LOAD_BETA_A = 1.9
_UL_LOAD_BETA_B = 2.3
_UL_DEEP_CONGESTION_PROB = 0.10


@dataclass(frozen=True, slots=True)
class DeploymentZone:
    """One stretch of road with a fixed radio configuration for an operator."""

    index: int
    operator: Operator
    start_m: float
    end_m: float
    region: RegionType
    timezone: Timezone
    #: The most capable technology deployed here.
    best_tech: RadioTechnology
    #: All deployed technologies (always includes LTE).
    deployed: frozenset[RadioTechnology]
    #: One serving cell per deployed technology.
    cells: dict[RadioTechnology, Cell]
    #: Capacity share available to our UE, per direction (0, 1].
    load_dl: float
    load_ul: float

    @property
    def length_m(self) -> float:
        return self.end_m - self.start_m

    def cell_for(self, tech: RadioTechnology) -> Cell:
        """Serving cell for a deployed technology.

        Raises
        ------
        DeploymentError
            If ``tech`` is not deployed in this zone.
        """
        try:
            return self.cells[tech]
        except KeyError:
            raise DeploymentError(
                f"{tech} not deployed in zone {self.index} of {self.operator}"
            ) from None


def _deployed_set(best: RadioTechnology, rng: np.random.Generator) -> frozenset[RadioTechnology]:
    """Derive the full deployed set below the best technology.

    LTE is ubiquitous.  LTE-A rides on LTE in most zones.  When the best tech
    is high-speed 5G, the low tier below it is usually (not always) present —
    NSA anchoring and layered deployments.
    """
    deployed = {_LTE, best}
    if best.rank >= _LTE_A.rank or rng.random() < 0.85:
        deployed.add(_LTE_A)
    if best.rank > _NR_LOW.rank and rng.random() < 0.7:
        deployed.add(_NR_LOW)
    if best is _NR_MM and rng.random() < 0.5:
        deployed.add(_NR_MID)
    return frozenset(deployed)


def _perpendicular_offset_m(region: RegionType, rng: np.random.Generator) -> float:
    """Distance of a cell site from the roadside, by region."""
    ranges = {
        RegionType.CITY: (25.0, 220.0),
        RegionType.SUBURBAN: (60.0, 450.0),
        RegionType.HIGHWAY: (50.0, 500.0),
    }
    lo, hi = ranges[region]
    return float(rng.uniform(lo, hi))


@dataclass
class DeploymentModel:
    """The full radio deployment of one operator along a route.

    Build with :meth:`build`; query zones by route distance with
    :meth:`zone_at` (active layer) or :meth:`macro_zone_at` (LTE anchor grid
    seen by the passive handover-logger).
    """

    operator: Operator
    zones: list[DeploymentZone]
    macro_zones: list[DeploymentZone]
    _zone_starts: list[float] = field(init=False, repr=False)
    _macro_starts: list[float] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.zones or not self.macro_zones:
            raise DeploymentError("deployment requires at least one zone per layer")
        self._zone_starts = [z.start_m for z in self.zones]
        self._macro_starts = [z.start_m for z in self.macro_zones]

    # -- queries ---------------------------------------------------------

    def zone_at(self, mark_m: float) -> DeploymentZone:
        """Active-layer zone containing route distance ``mark_m``."""
        return self._lookup(self.zones, self._zone_starts, mark_m)

    def macro_zone_at(self, mark_m: float) -> DeploymentZone:
        """Macro (LTE anchor) zone containing route distance ``mark_m``."""
        return self._lookup(self.macro_zones, self._macro_starts, mark_m)

    @staticmethod
    def _lookup(
        zones: list[DeploymentZone], starts: list[float], mark_m: float
    ) -> DeploymentZone:
        if mark_m < 0.0 or mark_m > zones[-1].end_m:
            raise DeploymentError(
                f"mark {mark_m} outside deployed range [0, {zones[-1].end_m}]"
            )
        idx = bisect.bisect_right(starts, mark_m) - 1
        return zones[max(idx, 0)]

    # -- construction ----------------------------------------------------

    @classmethod
    def build(
        cls,
        operator: Operator,
        route: Route,
        rng: np.random.Generator,
        tech_mix: dict[RegionType, TechMix] | None = None,
        *,
        start_m: float = 0.0,
        end_m: float | None = None,
    ) -> "DeploymentModel":
        """Generate the operator's deployment for ``route``.

        Parameters
        ----------
        operator:
            The carrier whose strategy (mix tables, zone densities) to use.
        route:
            The drive route to cover.
        rng:
            Source of randomness; the same generator state always produces
            the same deployment.
        tech_mix:
            Optional override of the per-region best-technology mix,
            bypassing :data:`DEFAULT_TECH_MIX` (used for ablations).
        start_m / end_m:
            Optional route span to deploy, in route meters.  The sharded
            execution engine builds each route shard's deployment only over
            its own window (plus an overrun margin), so the total deployment
            work across all shards stays proportional to the route length.
            Defaults to the full route.
        """
        if end_m is None:
            end_m = route.total_length_m
        if not 0.0 <= start_m < end_m:
            raise DeploymentError(
                f"invalid deployment span [{start_m}, {end_m})"
            )
        zones = cls._build_active_zones(operator, route, rng, tech_mix, start_m, end_m)
        macro = cls._build_macro_zones(operator, route, rng, start_m, end_m)
        return cls(operator=operator, zones=zones, macro_zones=macro)

    @classmethod
    def _build_active_zones(
        cls,
        operator: Operator,
        route: Route,
        rng: np.random.Generator,
        tech_mix: dict[RegionType, TechMix] | None,
        start_m: float,
        span_end_m: float,
    ) -> list[DeploymentZone]:
        zones: list[DeploymentZone] = []
        cell_seq = 0
        mark = start_m
        index = 0
        total = span_end_m
        while mark < total:
            pos = route.position_at(min(mark, total))
            region = pos.region
            if region is RegionType.HIGHWAY:
                median = _ACTIVE_HIGHWAY_MEDIAN_M[operator]
            else:
                median = _ACTIVE_ZONE_MEDIAN_M[region]
            length = ZoneLengthParams(median).sample(rng)
            end = min(mark + length, total)

            if tech_mix is not None:
                mix = tech_mix[region]
            else:
                mix = adjusted_mix(operator, region, pos.timezone)
            best = choose_weighted(rng, list(mix.keys()), list(mix.values()))
            deployed = _deployed_set(best, rng)

            cells: dict[RadioTechnology, Cell] = {}
            for tech in sorted(deployed, key=lambda t: t.rank):
                cell_seq += 1
                site_mark = float(rng.uniform(mark + 0.2 * (end - mark), mark + 0.8 * (end - mark)))
                perp = _perpendicular_offset_m(region, rng)
                site_pos = route.position_at(min(site_mark, total)).point
                cells[tech] = Cell(
                    cell_id=CellId(operator, tech, cell_seq),
                    site=site_pos,
                    site_mark_m=site_mark,
                    perpendicular_m=perp,
                )

            load_dl = cls._draw_load(rng, operator, "downlink", pos.timezone)
            load_ul = cls._draw_load(rng, operator, "uplink", pos.timezone)
            zones.append(
                DeploymentZone(
                    index=index,
                    operator=operator,
                    start_m=mark,
                    end_m=end,
                    region=region,
                    timezone=pos.timezone,
                    best_tech=best,
                    deployed=deployed,
                    cells=cells,
                    load_dl=load_dl,
                    load_ul=load_ul,
                )
            )
            index += 1
            mark = end
        return zones

    @classmethod
    def _build_macro_zones(
        cls,
        operator: Operator,
        route: Route,
        rng: np.random.Generator,
        start_m: float = 0.0,
        span_end_m: float | None = None,
    ) -> list[DeploymentZone]:
        zones: list[DeploymentZone] = []
        cell_seq = 1_000_000  # disjoint id space from the active layer
        mark = start_m
        index = 0
        total = route.total_length_m if span_end_m is None else span_end_m
        median = _MACRO_ZONE_MEDIAN_M[operator]
        while mark < total:
            pos = route.position_at(min(mark, total))
            length = ZoneLengthParams(median, sigma=0.5).sample(rng)
            end = min(mark + length, total)
            cell_seq += 1
            site_mark = float(rng.uniform(mark, end))
            tech = _LTE_A if rng.random() < 0.6 else _LTE
            cell = Cell(
                cell_id=CellId(operator, tech, cell_seq),
                site=route.position_at(min(site_mark, total)).point,
                site_mark_m=site_mark,
                perpendicular_m=_perpendicular_offset_m(pos.region, rng),
            )
            zones.append(
                DeploymentZone(
                    index=index,
                    operator=operator,
                    start_m=mark,
                    end_m=end,
                    region=pos.region,
                    timezone=pos.timezone,
                    best_tech=tech,
                    deployed=frozenset({_LTE, tech}),
                    cells={tech: cell, _LTE: cell},
                    load_dl=cls._draw_load(rng, operator, "downlink", pos.timezone),
                    load_ul=cls._draw_load(rng, operator, "uplink", pos.timezone),
                )
            )
            index += 1
            mark = end
        return zones

    @staticmethod
    def _draw_load(
        rng: np.random.Generator,
        operator: Operator,
        direction: str = "downlink",
        tz: Timezone | None = None,
    ) -> float:
        """Draw the per-zone capacity share available to our UE."""
        mountain = tz is Timezone.MOUNTAIN
        scale = _MOUNTAIN_LOAD_SCALE if mountain else 1.0
        if direction == "uplink":
            prob = _UL_DEEP_CONGESTION_PROB + (_MOUNTAIN_EXTRA_CONGESTION if mountain else 0.0)
            if rng.random() < prob:
                lo, hi = _DEEP_CONGESTION_RANGE
                return float(rng.uniform(lo, hi))
            return clamp(scale * float(rng.beta(_UL_LOAD_BETA_A, _UL_LOAD_BETA_B)), 0.02, 1.0)
        prob = _DEEP_CONGESTION_PROB[operator] + (_MOUNTAIN_EXTRA_CONGESTION if mountain else 0.0)
        if rng.random() < prob:
            lo, hi = _DEEP_CONGESTION_RANGE
            return float(rng.uniform(lo, hi))
        return clamp(scale * float(rng.beta(_LOAD_BETA_A, _LOAD_BETA_B)), 0.02, 1.0)

    # -- statistics ------------------------------------------------------

    def unique_cell_count(self) -> int:
        """Total distinct cells across both layers (Table 1 statistic)."""
        ids = {c.cell_id for z in self.zones for c in z.cells.values()}
        ids |= {c.cell_id for z in self.macro_zones for c in z.cells.values()}
        return len(ids)
