"""Cell sites and identifiers.

Each deployment zone along the route is served by one cell per technology
layer.  Cells carry a physical site location (offset from the road) used by
the channel model, and a globally unique identifier used by the handover
accounting and by Table 1's "# of unique cells connected" statistic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geo.coords import LatLon
from repro.radio.operators import Operator
from repro.radio.technology import RadioTechnology


@dataclass(frozen=True, slots=True)
class CellId:
    """Globally unique cell identifier.

    The string form mimics the operator/gNB-id style seen in modem logs,
    e.g. ``V-NR_MID-001234``.
    """

    operator: Operator
    technology: RadioTechnology
    sequence: int

    def __str__(self) -> str:
        return f"{self.operator.code}-{self.technology.name}-{self.sequence:06d}"


@dataclass(frozen=True, slots=True)
class Cell:
    """A cell site serving one technology layer within one zone."""

    cell_id: CellId
    site: LatLon
    #: Longitudinal position of the site along the route, in route meters.
    site_mark_m: float
    #: Perpendicular offset of the site from the road, in meters.
    perpendicular_m: float

    @property
    def operator(self) -> Operator:
        return self.cell_id.operator

    @property
    def technology(self) -> RadioTechnology:
        return self.cell_id.technology

    def distance_to_mark_m(self, mark_m: float) -> float:
        """2-D distance from the site to a route position, in meters.

        Uses the local road-frame approximation: longitudinal separation
        along the route plus the fixed perpendicular offset.
        """
        dx = mark_m - self.site_mark_m
        return float((dx * dx + self.perpendicular_m * self.perpendicular_m) ** 0.5)
