"""Cellular radio technologies spanned by the study.

The paper covers "all cellular technologies available today": LTE, LTE-A, and
5G NR in the low, mid, and mmWave bands.  §5.4 groups them into
high-throughput (HT: 5G mmWave, 5G midband) and low-throughput
(LT: LTE, LTE-A, 5G-low) classes for the operator-diversity analysis.
"""

from __future__ import annotations

import enum


class RadioTechnology(enum.Enum):
    """A cellular technology+band class, ordered roughly by capability."""

    LTE = ("LTE", 0)
    LTE_A = ("LTE-A", 1)
    NR_LOW = ("5G-low", 2)
    NR_MID = ("5G-mid", 3)
    NR_MMWAVE = ("5G-mmWave", 4)

    def __init__(self, label: str, rank: int) -> None:
        self.label = label
        #: Capability rank used to classify vertical handovers (4G↔5G).
        self.rank = rank

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.label

    @property
    def is_5g(self) -> bool:
        """True for any NR technology (low/mid/mmWave)."""
        return self in _NR_TECHS

    @property
    def is_4g(self) -> bool:
        """True for LTE or LTE-A."""
        return not self.is_5g

    @property
    def is_high_throughput(self) -> bool:
        """True for the paper's HT class: 5G mmWave or 5G midband (§5.4)."""
        return self in HIGH_THROUGHPUT_TECHS

    @property
    def carrier_ghz(self) -> float:
        """Representative carrier frequency in GHz."""
        return _CARRIER_GHZ[self]

    @property
    def channel_mhz(self) -> float:
        """Representative per-carrier channel bandwidth in MHz."""
        return _CHANNEL_MHZ[self]

    @property
    def ran_latency_ms(self) -> float:
        """Typical one-way RAN latency contribution in ms (scheduling +
        HARQ), lowest for mmWave's short slots."""
        return _RAN_LATENCY_MS[self]


_NR_TECHS = frozenset(
    {RadioTechnology.NR_LOW, RadioTechnology.NR_MID, RadioTechnology.NR_MMWAVE}
)

#: §5.4's high-throughput class.
HIGH_THROUGHPUT_TECHS: frozenset[RadioTechnology] = frozenset(
    {RadioTechnology.NR_MID, RadioTechnology.NR_MMWAVE}
)

#: §5.4's low-throughput class.
LOW_THROUGHPUT_TECHS: frozenset[RadioTechnology] = frozenset(
    {RadioTechnology.LTE, RadioTechnology.LTE_A, RadioTechnology.NR_LOW}
)

_CARRIER_GHZ: dict[RadioTechnology, float] = {
    RadioTechnology.LTE: 1.9,
    RadioTechnology.LTE_A: 2.1,
    RadioTechnology.NR_LOW: 0.85,
    RadioTechnology.NR_MID: 2.6,   # T-Mobile n41 / C-band neighbourhood
    RadioTechnology.NR_MMWAVE: 28.0,
}

_CHANNEL_MHZ: dict[RadioTechnology, float] = {
    RadioTechnology.LTE: 20.0,
    RadioTechnology.LTE_A: 20.0,
    RadioTechnology.NR_LOW: 20.0,
    RadioTechnology.NR_MID: 100.0,
    RadioTechnology.NR_MMWAVE: 400.0,
}

_RAN_LATENCY_MS: dict[RadioTechnology, float] = {
    RadioTechnology.LTE: 16.0,
    RadioTechnology.LTE_A: 13.0,
    RadioTechnology.NR_LOW: 12.0,
    RadioTechnology.NR_MID: 7.0,
    RadioTechnology.NR_MMWAVE: 3.0,
}

ALL_TECHNOLOGIES: tuple[RadioTechnology, ...] = (
    RadioTechnology.LTE,
    RadioTechnology.LTE_A,
    RadioTechnology.NR_LOW,
    RadioTechnology.NR_MID,
    RadioTechnology.NR_MMWAVE,
)
