"""Radio substrate: technologies, operators, cells, deployment, channel, PHY.

This package models what the paper's UEs saw through the XCAL probe: which
cellular technology served each stretch of road per operator, the low-level
KPIs (RSRP, MCS, BLER, carrier aggregation) of the serving link, and the
physical-layer capacity available to transport and applications.
"""

from repro.radio.technology import RadioTechnology, HIGH_THROUGHPUT_TECHS, LOW_THROUGHPUT_TECHS
from repro.radio.operators import Operator
from repro.radio.cells import Cell, CellId
from repro.radio.deployment import DeploymentModel, DeploymentZone
from repro.radio.channel import ChannelModel, ChannelState
from repro.radio.phy import PhyModel, PhyReport
from repro.radio.ca import CarrierAggregationModel

__all__ = [
    "RadioTechnology",
    "HIGH_THROUGHPUT_TECHS",
    "LOW_THROUGHPUT_TECHS",
    "Operator",
    "Cell",
    "CellId",
    "DeploymentModel",
    "DeploymentZone",
    "ChannelModel",
    "ChannelState",
    "PhyModel",
    "PhyReport",
    "CarrierAggregationModel",
]
