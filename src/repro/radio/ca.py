"""Carrier aggregation (CA) model.

The paper reports the number of aggregated carriers as one of the KPIs whose
correlation with throughput it studies (Table 2), and explains two
operator-specific behaviours (§5.5 "CA"): Verizon rarely aggregates uplink
carriers, while T-Mobile often aggregates 2 — but one of them is usually an
LTE anchor (NSA dual connectivity), whose narrow bandwidth limits the gain.

We model the CC count as a categorical draw per (operator, technology,
direction), sticky per zone (the configuration changes at handovers, not every
sample), and we expose the diminishing per-CC capacity contribution used by
the PHY layer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rng import choose_weighted

from repro.radio.operators import Operator
from repro.radio.technology import RadioTechnology

__all__ = ["Direction", "CarrierAggregationModel", "secondary_cc_factor"]


class Direction:
    """Traffic direction constants (string enum kept lightweight)."""

    DOWNLINK = "downlink"
    UPLINK = "uplink"

    ALL = (DOWNLINK, UPLINK)


#: Distribution of CC counts: (operator, tech, direction) -> {n_cc: prob}.
#: Missing entries fall back to {1: 1.0}.
_CC_DISTRIBUTIONS: dict[tuple[Operator, RadioTechnology, str], dict[int, float]] = {}


def _set_cc(op: Operator, tech: RadioTechnology, direction: str, dist: dict[int, float]) -> None:
    total = sum(dist.values())
    if abs(total - 1.0) > 1e-9:
        raise ValueError(f"CC distribution sums to {total}")
    _CC_DISTRIBUTIONS[(op, tech, direction)] = dist


_DL = Direction.DOWNLINK
_UL = Direction.UPLINK

# Downlink: heavy CA on LTE-A (that is what makes it "LTE-Advanced"),
# multiple mmWave CCs (the S21 supports 8), dual-carrier midband for
# T-Mobile, modest elsewhere.
for _op in Operator:
    _set_cc(_op, RadioTechnology.LTE, _DL, {1: 1.0})
    _set_cc(_op, RadioTechnology.NR_LOW, _DL, {1: 0.6, 2: 0.4})
_set_cc(Operator.VERIZON, RadioTechnology.LTE_A, _DL, {2: 0.50, 3: 0.30, 4: 0.20})
_set_cc(Operator.ATT, RadioTechnology.LTE_A, _DL, {2: 0.2, 3: 0.3, 4: 0.35, 5: 0.15})
_set_cc(Operator.TMOBILE, RadioTechnology.LTE_A, _DL, {2: 0.4, 3: 0.35, 4: 0.25})
_set_cc(Operator.TMOBILE, RadioTechnology.NR_MID, _DL, {1: 0.35, 2: 0.65})
_set_cc(Operator.VERIZON, RadioTechnology.NR_MID, _DL, {1: 0.7, 2: 0.3})
_set_cc(Operator.ATT, RadioTechnology.NR_MID, _DL, {1: 0.8, 2: 0.2})
_set_cc(Operator.VERIZON, RadioTechnology.NR_MMWAVE, _DL, {1: 0.2, 2: 0.3, 3: 0.25, 4: 0.25})
_set_cc(Operator.ATT, RadioTechnology.NR_MMWAVE, _DL, {1: 0.5, 2: 0.5})
_set_cc(Operator.TMOBILE, RadioTechnology.NR_MMWAVE, _DL, {1: 0.5, 2: 0.5})

# Uplink: the S21 supports only 2 UL CCs.  Verizon rarely aggregates;
# T-Mobile often runs 2 (one usually an LTE anchor); AT&T in between.
for _tech in RadioTechnology:
    _set_cc(Operator.VERIZON, _tech, _UL, {1: 0.92, 2: 0.08})
    _set_cc(Operator.ATT, _tech, _UL, {1: 0.6, 2: 0.4})
    _set_cc(Operator.TMOBILE, _tech, _UL, {1: 0.35, 2: 0.65})


def secondary_cc_factor(cc_index: int) -> float:
    """Capacity contribution of the ``cc_index``-th carrier relative to the
    primary (index 0 → 1.0).

    Secondary carriers ride weaker bands/beams and, for NSA 5G, are often
    narrow LTE anchors, so their marginal contribution shrinks.
    """
    if cc_index < 0:
        raise ValueError("cc_index must be non-negative")
    factors = (1.0, 0.75, 0.6, 0.5, 0.4, 0.35, 0.3, 0.25)
    return factors[min(cc_index, len(factors) - 1)]


def aggregate_capacity_factor(n_ccs: int) -> float:
    """Total capacity multiplier for ``n_ccs`` aggregated carriers.

    >>> aggregate_capacity_factor(1)
    1.0
    >>> aggregate_capacity_factor(2)
    1.75
    """
    if n_ccs < 1:
        raise ValueError("n_ccs must be at least 1")
    return sum(secondary_cc_factor(i) for i in range(n_ccs))


@dataclass
class CarrierAggregationModel:
    """Draws sticky CC counts for a serving configuration."""

    rng: np.random.Generator

    def draw_ccs(self, operator: Operator, tech: RadioTechnology, direction: str) -> int:
        """Draw the number of component carriers for a fresh configuration."""
        if direction not in Direction.ALL:
            raise ValueError(f"unknown direction {direction!r}")
        dist = _CC_DISTRIBUTIONS.get((operator, tech, direction), {1: 1.0})
        return int(choose_weighted(self.rng, list(dist.keys()), list(dist.values())))
