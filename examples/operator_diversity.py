#!/usr/bin/env python3
"""§5.4 reproduction: operator diversity and the multi-connectivity bound.

All three phones rode in one vehicle and ran each test concurrently, so
per-timestamp throughput comparisons across operators are meaningful.  This
example prints the Fig. 6 pairwise difference summaries, the technology-class
bin distribution, and the paper's recommendation-#2 upper bound: how much a
multipath scheduler aggregating all three operators would gain.

Run:
    python examples/operator_diversity.py [--scale 0.05]
"""

from __future__ import annotations

import argparse

import repro
from repro.analysis.opdiversity import (
    OPERATOR_PAIRS,
    multi_operator_gain,
    paired_throughput_differences,
)
from repro.radio.operators import Operator
from repro.reporting.tables import render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    print("Generating campaign ...")
    dataset = repro.generate_dataset(
        seed=args.seed, scale=args.scale, include_apps=False, include_static=False
    )

    for direction in ("downlink", "uplink"):
        rows = []
        for a, b in OPERATOR_PAIRS:
            pd = paired_throughput_differences(dataset, a, b, direction)
            fr = pd.bin_fractions()
            rows.append([
                f"{a.code} - {b.code}",
                len(pd.differences),
                f"{pd.cdf.quantile(0.1):.1f}",
                f"{pd.cdf.median:.1f}",
                f"{pd.cdf.quantile(0.9):.1f}",
                f"{100 * pd.first_wins_fraction():.0f}%",
                f"{100 * fr['LT-LT']:.0f}%",
                f"{100 * fr['HT-HT']:.1f}%",
            ])
        print()
        print(render_table(
            ["pair", "samples", "p10 Δ", "median Δ", "p90 Δ",
             "first wins", "LT-LT bin", "HT-HT bin"],
            rows,
            title=f"Fig. 6 ({direction}): concurrent throughput differences (Mbps)",
        ))

    print()
    rows = []
    for direction in ("downlink", "uplink"):
        gains = multi_operator_gain(dataset, direction)
        rows.append([direction] + [f"{gains[op]:.2f}x" for op in Operator])
    print(render_table(
        ["direction"] + [op.label for op in Operator],
        rows,
        title="Multi-connectivity upper bound: median best-of-3 gain vs each operator",
    ))
    print("\nThe paper's recommendation #2: multipath over multiple operators"
          "\nwould capture exactly this diversity.")


if __name__ == "__main__":
    main()
