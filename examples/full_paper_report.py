#!/usr/bin/env python3
"""Reproduce the whole paper in one run.

Generates a campaign, validates it, and walks every section of the paper —
coverage (§4), network performance (§5), handovers (§6), applications (§7)
and the quantified §8 recommendations — printing the key rows of each table
and figure.  This is the end-to-end tour; the benchmark harness
(`pytest benchmarks/ --benchmark-only`) produces the complete per-figure
reports with paper values side by side.

Run:
    python examples/full_paper_report.py [--scale 0.08] [--save dataset.jsonl.gz]
"""

from __future__ import annotations

import argparse

import repro
from repro.analysis import coverage
from repro.analysis.correlation import KPI_NAMES, correlation_table
from repro.analysis.handovers import handover_durations, handovers_per_mile
from repro.analysis.performance import static_vs_driving
from repro.analysis.recommendations import quantify_recommendations
from repro.campaign.tests import TestType
from repro.campaign.validation import validate_dataset
from repro.radio.operators import Operator
from repro.reporting.strips import render_fig1
from repro.reporting.tables import render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.08)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--save", type=str, default=None,
                        help="optionally persist the dataset here (.jsonl.gz)")
    args = parser.parse_args()

    print(f"Generating campaign (seed={args.seed}, scale={args.scale}) ...")
    dataset = repro.generate_dataset(seed=args.seed, scale=args.scale)

    validation = validate_dataset(dataset)
    print(f"Dataset validation: {validation.checks_run} checks, "
          f"{'OK' if validation.ok else f'{len(validation.issues)} ISSUES'}")
    if args.save:
        from repro.campaign.persistence import save_dataset

        save_dataset(dataset, args.save)
        print(f"Dataset saved to {args.save}")

    # §4 — coverage.
    print("\n" + "=" * 70 + "\n§4 NETWORK COVERAGE\n" + "=" * 70)
    print(render_fig1(dataset, bin_km=60.0))
    rows = []
    for op in Operator:
        shares = coverage.active_coverage_shares(dataset, op)
        rows.append([op.label, f"{100 * shares.share_5g:.0f}%",
                     f"{100 * shares.share_high_speed_5g:.0f}%"])
    print(render_table(["operator", "5G share", "high-speed 5G"], rows,
                       title="Fig. 2a (paper: 68% T-Mobile, ~20% V/A)"))

    # §5 — performance.
    print("\n" + "=" * 70 + "\n§5 NETWORK PERFORMANCE\n" + "=" * 70)
    rows = []
    for op in Operator:
        r = static_vs_driving(dataset, op)
        rows.append([
            op.label,
            f"{r.static_dl.median:.0f}", f"{r.driving_dl.median:.1f}",
            f"{100 * r.driving_dl.prob_below(5.0):.0f}%",
            f"{r.driving_rtt.median:.0f}",
        ])
    print(render_table(
        ["operator", "static DL med", "driving DL med", "DL<5Mbps", "RTT med"],
        rows, title="Fig. 3 (paper: 1511/311/710 static; 6-34 driving)",
    ))
    rows = []
    for row in correlation_table(dataset):
        rows.append([f"{row.operator.code} {row.direction[:2].upper()}"]
                    + [f"{row.coefficients[k]:+.2f}" for k in KPI_NAMES])
    print()
    print(render_table(["op/dir"] + list(KPI_NAMES), rows,
                       title="Table 2 (paper: nothing correlates strongly; HO ≈ 0)"))

    # §6 — handovers.
    print("\n" + "=" * 70 + "\n§6 HANDOVERS\n" + "=" * 70)
    rows = []
    for op in Operator:
        rate = handovers_per_mile(dataset, op, "downlink")
        dur = handover_durations(dataset, op, "downlink")
        rows.append([op.label, f"{rate.median:.1f}", f"{rate.maximum:.0f}",
                     f"{dur.median:.0f}"])
    print(render_table(
        ["operator", "HO/mile med", "max", "duration med (ms)"],
        rows, title="Fig. 11 (paper: 1-3/mile, 53-76 ms)",
    ))

    # §7 — applications.
    print("\n" + "=" * 70 + "\n§7 5G APPLICATIONS (Verizon)\n" + "=" * 70)
    from repro.analysis.apps import (
        gaming_app_report,
        offload_app_report,
        video_app_report,
    )

    ar = offload_app_report(dataset, Operator.VERIZON, TestType.AR)
    cav = offload_app_report(dataset, Operator.VERIZON, TestType.CAV)
    video = video_app_report(dataset, Operator.VERIZON)
    gaming = gaming_app_report(dataset, Operator.VERIZON)
    rows = [
        ["AR E2E median (compressed)",
         f"{ar.e2e_cdf[True].median:.0f} ms" if True in ar.e2e_cdf else "-", "214 ms"],
        ["CAV E2E median (compressed)",
         f"{cav.e2e_cdf[True].median:.0f} ms" if True in cav.e2e_cdf else "-", "269 ms"],
        ["video QoE median", f"{video.qoe_cdf.median:.1f}", "-53.75"],
        ["gaming bitrate median", f"{gaming.bitrate_cdf.median:.1f} Mbps", "17.5 Mbps"],
    ]
    print(render_table(["metric", "measured", "paper"], rows))

    # §8 — recommendations quantified.
    print("\n" + "=" * 70 + "\n§8 RECOMMENDATIONS, QUANTIFIED\n" + "=" * 70)
    rec = quantify_recommendations(dataset)
    rows = [
        [f"1. compression ({g.app.value})", f"{g.speedup:.1f}x E2E reduction"]
        for g in rec.compression
    ]
    for g in rec.multipath:
        rows.append([
            f"2. multipath ({g.direction})",
            f"{g.median_gain:.1f}x median; <5 Mbps {100 * g.single_outage_fraction:.0f}%"
            f" → {100 * g.aggregate_outage_fraction:.0f}%",
        ])
    rows.append([
        "3. edge serving",
        f"RTT −{100 * rec.edge.rtt_reduction:.0f}% "
        f"({rec.edge.rtt_median_cloud_ms:.0f} → {rec.edge.rtt_median_edge_ms:.0f} ms)",
    ])
    print(render_table(["recommendation", "quantified benefit"], rows))


if __name__ == "__main__":
    main()
