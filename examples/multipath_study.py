#!/usr/bin/env python3
"""Extension study: what would multi-operator multipath buy?

The paper's recommendation #2 (§8): smartphone vendors should explore
multipath over multiple cellular networks.  This example quantifies the
three natural schedulers over a generated campaign — pooled aggregation,
ideal best-path switching, and redundant duplication — against each single
operator, including the effect on the paper's headline "below 5 Mbps ~35%
of the time" outage share.

Run:
    python examples/multipath_study.py [--scale 0.05]
"""

from __future__ import annotations

import argparse

import numpy as np

import repro
from repro.net.multipath import MultipathScheduler, simulate_multipath
from repro.radio.operators import Operator
from repro.reporting.tables import render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    print("Generating campaign ...")
    dataset = repro.generate_dataset(
        seed=args.seed, scale=args.scale, include_apps=False, include_static=False
    )

    for direction in ("downlink", "uplink"):
        rows = []
        baseline = simulate_multipath(dataset, direction, MultipathScheduler.BEST_PATH)
        for op in Operator:
            single = baseline.single_path[op]
            rows.append([
                f"single: {op.label}",
                f"{float(np.median(single)):.1f}",
                f"{100 * float((single < 5.0).mean()):.0f}%",
                "-",
            ])
        for sched in MultipathScheduler:
            res = simulate_multipath(dataset, direction, sched)
            gains = " / ".join(
                f"{res.median_gain_over(op):.1f}x" for op in Operator
            )
            rows.append([
                f"multipath: {sched.value}",
                f"{res.median_mbps:.1f}",
                f"{100 * res.outage_fraction(5.0):.0f}%",
                gains,
            ])
        print()
        print(render_table(
            ["configuration", "median Mbps", "< 5 Mbps", "gain vs V/T/A"],
            rows,
            title=f"Multipath study ({direction})",
        ))
    print("\nAggregating all three carriers collapses the sub-5 Mbps outage"
          "\nshare — the quantified case for the paper's recommendation #2.")


if __name__ == "__main__":
    main()
