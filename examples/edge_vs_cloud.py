#!/usr/bin/env python3
"""Edge computing study: Wavelength edge vs EC2 cloud on Verizon (§5.2, §7).

The paper deployed AWS Wavelength servers inside Verizon's network in five
cities and found that edge serving boosts throughput, RTT, and every app's
QoE.  This example quantifies those deltas on a generated campaign.

Run:
    python examples/edge_vs_cloud.py [--scale 0.08]
"""

from __future__ import annotations

import argparse

import numpy as np

import repro
from repro.analysis.performance import edge_vs_cloud_rtt
from repro.campaign.tests import TestType
from repro.net.servers import ServerKind
from repro.radio.operators import Operator
from repro.reporting.tables import render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.08)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    print("Generating campaign (apps included; this takes a little longer) ...")
    dataset = repro.generate_dataset(seed=args.seed, scale=args.scale)

    # Raw RTT split.
    rows = []
    for kind in ServerKind:
        rtts = dataset.rtt_values(
            operator=Operator.VERIZON, static=False, server_kind=kind
        )
        if len(rtts) == 0:
            continue
        rows.append([
            str(kind), len(rtts),
            f"{np.median(rtts):.1f}", f"{np.percentile(rtts, 90):.0f}",
        ])
    print()
    print(render_table(
        ["server", "samples", "RTT median (ms)", "RTT p90 (ms)"],
        rows, title="Verizon RTT: edge vs cloud (paper: mmWave+edge median 18 ms)",
    ))

    # Per-technology RTT comparison where both kinds have data.
    by_kind = edge_vs_cloud_rtt(dataset)
    if ServerKind.EDGE in by_kind and ServerKind.CLOUD in by_kind:
        shared = sorted(
            set(by_kind[ServerKind.EDGE]) & set(by_kind[ServerKind.CLOUD]),
            key=lambda t: t.rank,
        )
        rows = [
            [t.label,
             f"{by_kind[ServerKind.EDGE][t].median:.1f}",
             f"{by_kind[ServerKind.CLOUD][t].median:.1f}"]
            for t in shared
        ]
        print()
        print(render_table(
            ["technology", "edge RTT med", "cloud RTT med"], rows,
            title="Per-technology RTT medians (ms)",
        ))

    # App QoE split.
    rows = []
    for name, runs, metric in (
        ("AR mean E2E (ms)",
         [r for r in dataset.offload_runs
          if r.operator is Operator.VERIZON and r.app is TestType.AR
          and r.compression and not r.static and np.isfinite(r.mean_e2e_ms)],
         lambda r: r.mean_e2e_ms),
        ("video QoE",
         [r for r in dataset.video_runs if r.operator is Operator.VERIZON and not r.static],
         lambda r: r.qoe),
        ("gaming bitrate (Mbps)",
         [r for r in dataset.gaming_runs if r.operator is Operator.VERIZON and not r.static],
         lambda r: r.avg_bitrate_mbps),
    ):
        edge = [metric(r) for r in runs if r.server_kind is ServerKind.EDGE]
        cloud = [metric(r) for r in runs if r.server_kind is ServerKind.CLOUD]
        rows.append([
            name,
            f"{np.median(edge):.1f}" if edge else "-",
            f"{np.median(cloud):.1f}" if cloud else "-",
            len(edge), len(cloud),
        ])
    print()
    print(render_table(
        ["app metric", "edge median", "cloud median", "edge runs", "cloud runs"],
        rows, title="App QoE: edge vs cloud serving (Verizon)",
    ))
    print("\nPaper conclusion: 'edge computing is critical to boosting the"
          "\nperformance of 5G killer apps' (§5.2).")


if __name__ == "__main__":
    main()
