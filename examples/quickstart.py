#!/usr/bin/env python3
"""Quickstart: generate a drive-campaign dataset and print its headline stats.

This is the 60-second tour of the library: one seeded campaign at a small
duty cycle (the vehicle still traverses the full LA→Boston route), followed
by the Table-1-style dataset summary and the per-operator performance
medians the paper's abstract quotes.

With ``--workers N`` the campaign runs on the sharded execution engine
(:mod:`repro.engine`): the route is split into windows that generate in
parallel worker processes and merge into the **bit-identical** dataset the
serial path produces — same seed, same bytes, any worker count.

Run:
    python examples/quickstart.py [--scale 0.03] [--seed 42] [--workers 4]
"""

from __future__ import annotations

import argparse

import numpy as np

import repro
from repro.radio.operators import Operator
from repro.reporting.tables import render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.03,
                        help="active-testing duty cycle along the route")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--workers", type=int, default=0,
                        help="generate on N parallel workers via repro.engine "
                             "(0 = serial; the dataset is identical either way)")
    args = parser.parse_args()

    if args.workers > 0:
        print(f"Generating campaign (seed={args.seed}, scale={args.scale}) "
              f"on {args.workers} workers ...")
        dataset = repro.generate_dataset_parallel(
            seed=args.seed, scale=args.scale, workers=args.workers,
        )
    else:
        print(f"Generating campaign (seed={args.seed}, scale={args.scale}) ...")
        dataset = repro.generate_dataset(seed=args.seed, scale=args.scale)
    summary = dataset.summary()

    rows = [
        ["total distance (km)", f"{summary.total_distance_km:.0f}"],
        ["throughput samples", len(dataset.throughput_samples)],
        ["RTT samples", len(dataset.rtt_samples)],
        ["tests run", len(dataset.tests)],
        ["handovers during tests", len(dataset.handovers)],
        ["app runs (AR/CAV/video/gaming)",
         f"{len(dataset.offload_runs)}/{len(dataset.video_runs)}/{len(dataset.gaming_runs)}"],
        ["data received (GB)", f"{summary.total_rx_gb:.1f}"],
        ["data transmitted (GB)", f"{summary.total_tx_gb:.1f}"],
    ]
    print()
    print(render_table(["statistic", "value"], rows, title="Dataset summary (Table 1 style)"))

    rows = []
    for op in Operator:
        dl = dataset.tput_values(operator=op, direction="downlink", static=False)
        ul = dataset.tput_values(operator=op, direction="uplink", static=False)
        rtt = dataset.rtt_values(operator=op, static=False)
        rows.append([
            op.label,
            f"{np.median(dl):.1f}",
            f"{np.median(ul):.1f}",
            f"{100 * np.mean(dl < 5.0):.0f}%",
            f"{np.median(rtt):.0f}",
            f"{summary.handovers[op]}",
        ])
    print()
    print(render_table(
        ["operator", "DL median (Mbps)", "UL median (Mbps)", "DL < 5 Mbps",
         "RTT median (ms)", "trip handovers"],
        rows,
        title="Driving performance (paper: DL medians 6-34 Mbps, ~35% below 5 Mbps)",
    ))


if __name__ == "__main__":
    main()
