#!/usr/bin/env python3
"""§B reproduction: the log-synchronisation software.

Regenerates the raw log mess the authors faced — DRM files with local-time
filenames and EDT contents, app logs stamped in UTC epoch or local wall-clock
— then runs the matcher (which must hypothesise the capture timezone for
each DRM file) and builds the consolidated database joining app metrics with
PHY KPIs.

Run:
    python examples/log_sync_pipeline.py [--scale 0.01] [--write-dir /tmp/drive-logs]
"""

from __future__ import annotations

import argparse
import pathlib

from repro.campaign.runner import CampaignConfig, DriveCampaign
from repro.reporting.tables import render_table
from repro.sync.database import ConsolidatedDatabase
from repro.sync.matcher import match_logs
from repro.xcal.export import export_logs


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.01)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--write-dir", type=str, default=None,
                        help="optionally materialise the raw log files here")
    args = parser.parse_args()

    print("Generating campaign ...")
    campaign = DriveCampaign(CampaignConfig(
        seed=args.seed, scale=args.scale, include_apps=False, include_static=False,
    ))
    dataset = campaign.run()

    print("Exporting raw logs (DRM + app-layer) ...")
    drm_files, app_logs = export_logs(dataset, campaign.route)
    print(f"  {len(drm_files)} DRM files, {len(app_logs)} app logs")
    print(f"  example DRM filename (local time):  {drm_files[0].filename}")
    print(f"  example app log filename (UTC):     {app_logs[0].filename}")
    print(f"  example DRM content line (EDT):     "
          f"{drm_files[0].serialize().splitlines()[1][:72]} ...")

    if args.write_dir:
        out = pathlib.Path(args.write_dir)
        out.mkdir(parents=True, exist_ok=True)
        for drm in drm_files:
            (out / drm.filename).write_text(drm.serialize())
        for log in app_logs:
            (out / log.filename).write_text(log.serialize())
        print(f"  wrote {len(drm_files) + len(app_logs)} files to {out}")

    print("\nMatching app logs to DRM captures across timezones ...")
    pairs = match_logs(drm_files, app_logs)
    zones = {}
    for pair in pairs:
        zones[pair.inferred_timezone.label] = zones.get(pair.inferred_timezone.label, 0) + 1
    rows = [[tz, count] for tz, count in sorted(zones.items())]
    print(render_table(["inferred capture timezone", "matched tests"], rows))

    print("\nBuilding the consolidated database (app ⋈ XCAL KPIs) ...")
    db = ConsolidatedDatabase.build(pairs)
    print(f"  joined rows: {len(db)}")
    print(f"  join rate:   {100 * db.match_rate():.1f}%")
    sample = db.rows[0]
    print(f"  example row: {sample.utc} {sample.operator.code} "
          f"{sample.test_label} app={sample.app_value:.2f} "
          f"tech={sample.technology.label} rsrp={sample.rsrp_dbm:.1f} "
          f"mcs={sample.mcs}")


if __name__ == "__main__":
    main()
