#!/usr/bin/env python3
"""§6 reproduction: handover frequency, duration, and throughput impact.

Prints Fig. 11's per-mile rates and durations and Fig. 12's ΔT1/ΔT2 impact
distributions, including the per-type breakdown that explains why handovers
barely correlate with throughput.

Run:
    python examples/handover_explorer.py [--scale 0.08]
"""

from __future__ import annotations

import argparse

import repro
from repro.analysis.handovers import (
    handover_durations,
    handover_impact,
    handovers_per_mile,
)
from repro.mobility.events import HandoverType
from repro.radio.operators import Operator
from repro.reporting.tables import render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.08)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    print("Generating campaign ...")
    dataset = repro.generate_dataset(
        seed=args.seed, scale=args.scale, include_apps=False, include_static=False
    )

    rows = []
    for op in Operator:
        for direction in ("downlink", "uplink"):
            rate = handovers_per_mile(dataset, op, direction)
            dur = handover_durations(dataset, op, direction)
            rows.append([
                f"{op.code} {direction[:2].upper()}",
                f"{rate.median:.1f}", f"{rate.quantile(0.75):.1f}", f"{rate.maximum:.0f}",
                f"{dur.median:.0f}", f"{dur.quantile(0.75):.0f}",
            ])
    print()
    print(render_table(
        ["op/dir", "HO/mile med", "p75", "max", "duration med (ms)", "p75"],
        rows, title="Fig. 11: handover rates and durations",
    ))

    rows = []
    for op in Operator:
        impact = handover_impact(dataset, op, "downlink")
        rows.append([
            op.label,
            impact.delta_t1.n,
            f"{100 * impact.drop_fraction:.0f}%",
            f"{impact.delta_t1.median:+.2f}",
            f"{100 * impact.improvement_fraction:.0f}%",
            f"{impact.delta_t2.median:+.2f}",
        ])
    print()
    print(render_table(
        ["operator", "handovers", "ΔT1<0 (drop)", "ΔT1 median",
         "ΔT2>0 (improves)", "ΔT2 median"],
        rows,
        title="Fig. 12: throughput impact (Mbps; paper: drop ~80%, improve 55-60%)",
    ))

    # Per-type ΔT2 breakdown.
    rows = []
    for op in Operator:
        impact = handover_impact(dataset, op, "downlink")
        row = [op.label]
        for ho_type in HandoverType:
            cdf = impact.delta_t2_by_type.get(ho_type)
            row.append(f"{cdf.median:+.1f} (n={cdf.n})" if cdf else "-")
        rows.append(row)
    print()
    print(render_table(
        ["operator"] + [str(t) for t in HandoverType], rows,
        title="ΔT2 median by handover type (paper: 5G→4G hurts, 4G→5G helps)",
    ))
    print("\nThe combination of low rates, ~60 ms durations and offsetting"
          "\nΔT1/ΔT2 explains the near-zero throughput-handover correlation"
          "\n(Table 2).")


if __name__ == "__main__":
    main()
