#!/usr/bin/env python3
"""§4 reproduction: technology coverage along the cross-country route.

Prints the paper's Fig. 1 contrast (passive handover-logger vs active XCAL
views), the Fig. 2a technology shares, and the Fig. 2b/2c/2d breakdowns by
traffic direction, timezone and speed bin.

Run:
    python examples/coverage_report.py [--scale 0.05]
"""

from __future__ import annotations

import argparse

import repro
from repro.analysis import coverage
from repro.geo.timezones import Timezone
from repro.radio.operators import Operator
from repro.radio.technology import ALL_TECHNOLOGIES
from repro.reporting.tables import render_table
from repro.units import SPEED_BIN_LABELS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    print("Generating campaign ...")
    dataset = repro.generate_dataset(
        seed=args.seed, scale=args.scale, include_apps=False
    )

    # Fig. 1: passive vs active view.
    rows = []
    for op in Operator:
        passive = coverage.passive_coverage_shares(dataset, op)
        active = coverage.active_coverage_shares(dataset, op)
        rows.append([
            op.label,
            f"{100 * passive.share_5g:.1f}%",
            f"{100 * active.share_5g:.1f}%",
        ])
    print()
    print(render_table(
        ["operator", "passive 5G share", "active 5G share"], rows,
        title="Fig. 1: the passive handover-logger is far more pessimistic",
    ))

    # Fig. 1 strips (ASCII rendering of the paper's route maps).
    from repro.reporting.strips import render_fig1

    print()
    print(render_fig1(dataset))

    # Fig. 2a: full technology mix.
    rows = []
    for op in Operator:
        shares = coverage.active_coverage_shares(dataset, op)
        rows.append(
            [op.label]
            + [f"{shares.percent(t):.1f}%" for t in ALL_TECHNOLOGIES]
            + [f"{100 * shares.share_5g:.0f}%", f"{100 * shares.share_high_speed_5g:.0f}%"]
        )
    print()
    print(render_table(
        ["operator"] + [t.label for t in ALL_TECHNOLOGIES] + ["5G total", "HS-5G"],
        rows, title="Fig. 2a: coverage by technology (% of miles driven)",
    ))

    # Fig. 2b: by direction (high-speed 5G only).
    rows = []
    for op in Operator:
        by_dir = coverage.coverage_by_direction(dataset, op)
        rows.append([
            op.label,
            f"{100 * by_dir['downlink'].share_high_speed_5g:.1f}%",
            f"{100 * by_dir['uplink'].share_high_speed_5g:.1f}%",
        ])
    print()
    print(render_table(
        ["operator", "HS-5G (downlink)", "HS-5G (uplink)"], rows,
        title="Fig. 2b: operators prefer high-speed 5G for downlink backlogs",
    ))

    # Fig. 2c: 5G share per timezone.
    rows = []
    for op in Operator:
        by_tz = coverage.coverage_by_timezone(dataset, op)
        rows.append([op.label] + [
            f"{100 * by_tz[tz].share_5g:.0f}%" if tz in by_tz else "-"
            for tz in Timezone
        ])
    print()
    print(render_table(
        ["operator"] + [tz.label for tz in Timezone], rows,
        title="Fig. 2c: 5G share per timezone",
    ))

    # Fig. 2d: high-speed-5G share per speed bin.
    rows = []
    for op in Operator:
        by_bin = coverage.coverage_by_speed_bin(dataset, op)
        rows.append([op.label] + [
            f"{100 * by_bin[b].share_high_speed_5g:.0f}%" if b in by_bin else "-"
            for b in SPEED_BIN_LABELS
        ])
    print()
    print(render_table(
        ["operator"] + list(SPEED_BIN_LABELS), rows,
        title="Fig. 2d: high-speed 5G concentrates at city speeds",
    ))


if __name__ == "__main__":
    main()
